// Package lint is gpunoc's in-tree static-analysis suite. It enforces the
// invariants docs/ARCHITECTURE.md promises — the import DAG, wall-clock and
// global-RNG freedom, the single-goroutine tick model, and the absence of
// package-level mutable state — so the simulator stays a pure function of
// config.Config as the engine grows. The suite is built only on the standard
// library (go/ast, go/parser, go/token, go/types, go/importer); the module
// stays dependency-free.
//
// A finding can be waived at a specific line with an inline directive:
//
//	//lint:allow <rule> <reason>
//
// placed on the offending line or the line directly above it. The reason is
// mandatory, the rule name must be one of the registered analyzers, and an
// unused directive is itself a finding — waivers cannot silently outlive the
// code they excuse.
package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding: a position, the rule (analyzer) that fired, and
// a human-readable message.
type Diagnostic struct {
	Pos  token.Position `json:"pos"`
	Rule string         `json:"rule"`
	Msg  string         `json:"msg"`
}

// String renders the diagnostic in the canonical "file:line: [rule] message"
// form used by the driver and the golden fixture tests.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Rule, d.Msg)
}

// Analyzer is one invariant checker. Run inspects a single loaded package and
// reports findings through the Pass.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass is the per-(package, analyzer) reporting context handed to Analyzer.Run.
type Pass struct {
	Pkg   *Package
	Rules *Rules

	rule  string
	diags []Diagnostic
}

// Report records a finding at pos.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:  p.Pkg.Fset.Position(pos),
		Rule: p.rule,
		Msg:  fmt.Sprintf(format, args...),
	})
}

// Analyzers returns the full suite in a fixed order. The analyzer names are
// the rule names accepted by //lint:allow directives.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		layeringAnalyzer(),
		determinismAnalyzer(),
		tickModelAnalyzer(),
		purityAnalyzer(),
		godocAnalyzer(),
	}
}

// allowDirective is one parsed //lint:allow comment.
type allowDirective struct {
	file      string
	line      int
	rule      string
	malformed string // non-empty: why the directive itself is a finding
	used      bool
}

// allowPrefix is the directive marker. Like //go:build, the canonical form
// has no space after "//", but a spaced form is tolerated.
const allowPrefix = "lint:allow"

// collectAllows parses every //lint:allow directive in the package.
func collectAllows(pkg *Package) []*allowDirective {
	var out []*allowDirective
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				d := &allowDirective{file: pos.Filename, line: pos.Line}
				fields := strings.Fields(strings.TrimPrefix(text, allowPrefix))
				switch {
				case len(fields) == 0:
					d.malformed = "missing rule and reason"
				case len(fields) == 1:
					d.rule = fields[0]
					d.malformed = "missing reason"
				default:
					d.rule = fields[0]
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// Run applies every analyzer to every package, filters findings through the
// //lint:allow directives, appends directive-hygiene findings (malformed,
// unknown rule, unused), and returns the surviving diagnostics sorted by
// file, line, rule, and message.
func Run(pkgs []*Package, rules *Rules, analyzers []*Analyzer) []Diagnostic {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}

	var out []Diagnostic
	for _, pkg := range pkgs {
		allows := collectAllows(pkg)
		var raw []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{Pkg: pkg, Rules: rules, rule: a.Name}
			a.Run(pass)
			raw = append(raw, pass.diags...)
		}
		for _, d := range raw {
			if dir := matchingAllow(allows, d); dir != nil {
				dir.used = true
				continue
			}
			out = append(out, d)
		}
		for _, dir := range allows {
			pos := token.Position{Filename: dir.file, Line: dir.line}
			switch {
			case dir.malformed != "":
				out = append(out, Diagnostic{Pos: pos, Rule: "lint",
					Msg: fmt.Sprintf("malformed //lint:allow directive: %s (want //lint:allow <rule> <reason>)", dir.malformed)})
			case !known[dir.rule]:
				out = append(out, Diagnostic{Pos: pos, Rule: "lint",
					Msg: fmt.Sprintf("//lint:allow names unknown rule %q (known: %s)", dir.rule, ruleNames(analyzers))})
			case !dir.used:
				out = append(out, Diagnostic{Pos: pos, Rule: "lint",
					Msg: fmt.Sprintf("unused //lint:allow %s directive (nothing on this or the next line triggers the rule)", dir.rule)})
			}
		}
	}

	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Msg < b.Msg
	})
	return out
}

// matchingAllow returns the directive suppressing d: same file and rule, on
// the diagnostic's line or the line directly above it.
func matchingAllow(allows []*allowDirective, d Diagnostic) *allowDirective {
	for _, dir := range allows {
		if dir.malformed != "" || dir.rule != d.Rule || dir.file != d.Pos.Filename {
			continue
		}
		if dir.line == d.Pos.Line || dir.line == d.Pos.Line-1 {
			return dir
		}
	}
	return nil
}

func ruleNames(analyzers []*Analyzer) string {
	names := make([]string, len(analyzers))
	for i, a := range analyzers {
		names[i] = a.Name
	}
	return strings.Join(names, ", ")
}
