// Fixture: link may import arb — a documented intra-substrate edge of the
// layering table.
package link

import "gpunoc/internal/arb"

// DefaultPolicy re-exports the arb placeholder.
const DefaultPolicy = arb.Policy(0)
