// A stdlib-only, type-based call graph over the loaded module, built from
// go/ast + go/types (no golang.org/x/tools — the module stays
// dependency-free). The graph is deliberately conservative: it over-
// approximates the dynamic call relation so that reachability-based
// analyzers (shardsafety, hotalloc) never miss a path, at the cost of some
// spurious edges. Edges come from five sources:
//
//  1. static calls — a call whose callee resolves through types.Info to a
//     declared module function or method;
//  2. interface dispatch — a call through an interface method adds an edge
//     to every module type implementing that interface (class-hierarchy
//     analysis), using the concrete method the method set selects;
//  3. indirect calls — a call through a func-typed struct field adds edges
//     to exactly the function values the module stores into that field
//     (field-sensitive resolution; a store the builder cannot resolve to a
//     syntactic function value marks the field opaque). Calls through other
//     func-typed values — parameters, locals, opaque fields — fan out to
//     every "address-taken" module function, method value, and function
//     literal with the same parameter/result shape (signature buckets);
//  4. interface conversions — passing, assigning, or returning a concrete
//     module value where a non-empty interface is expected makes the
//     interface's methods on that type reachable (this is how
//     container/heap's calls back into a module heap implementation are
//     seen, even though the call sites live in the standard library);
//  5. escaping function values — a function value handed to a non-module
//     callee (sync.Once.Do, sort.Slice) is treated as called at the hand-off
//     point, since the actual invocation is invisible.
//
// Function literals are first-class nodes: a literal's body is analyzed
// exactly once, under the literal's own node, never under its enclosing
// function — the enclosing function gets an edge (or a bucket entry) instead.
// Packages that failed to type-check contribute no nodes; `go build ./...`
// guards compilability, so in practice the graph covers the whole module.

package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// FuncRef names a declared function or method: a module-relative package dir,
// the receiver's named type ("" for a plain function; no pointer marker), and
// the function name.
type FuncRef struct {
	Package string `json:"package"`
	Recv    string `json:"recv,omitempty"`
	Name    string `json:"name"`
}

// String renders the reference as "pkg.(Recv).Name" or "pkg.Name".
func (r FuncRef) String() string {
	if r.Recv != "" {
		return fmt.Sprintf("%s.(%s).%s", r.Package, r.Recv, r.Name)
	}
	return fmt.Sprintf("%s.%s", r.Package, r.Name)
}

// CGNode is one function in the call graph: a declared function/method
// (Fn != nil) or a function literal (Lit != nil).
type CGNode struct {
	Fn   *types.Func  // nil for function literals
	Lit  *ast.FuncLit // nil for declared functions
	Pkg  *Package
	Body *ast.BlockStmt
	Out  []CGEdge
}

// CGEdge is one call edge. Call is the syntactic call site when the edge
// comes from a call expression in the caller's body, and nil for implicit
// edges (interface conversions, function values escaping to external code).
type CGEdge struct {
	Callee *CGNode
	Call   *ast.CallExpr
}

// Sig returns the node's signature (receiver included for methods).
func (n *CGNode) Sig() *types.Signature {
	if n.Fn != nil {
		return n.Fn.Type().(*types.Signature)
	}
	if t, ok := n.Pkg.Info.Types[n.Lit]; ok {
		if sig, ok := t.Type.(*types.Signature); ok {
			return sig
		}
	}
	return nil
}

// Pos returns the node's declaration position.
func (n *CGNode) Pos() token.Pos {
	if n.Fn != nil {
		return n.Fn.Pos()
	}
	return n.Lit.Pos()
}

// String renders "internal/noc.(*Network).DrainReplies" for methods,
// "internal/engine.resolveWorkers" for functions, and "internal/noc.func@L123"
// for literals.
func (n *CGNode) String() string {
	if n.Lit != nil {
		pos := n.Pkg.Fset.Position(n.Lit.Pos())
		return fmt.Sprintf("%s.func@L%d", n.Pkg.Rel, pos.Line)
	}
	sig := n.Sig()
	if sig != nil && sig.Recv() != nil {
		return fmt.Sprintf("%s.(%s).%s", n.Pkg.Rel,
			types.TypeString(sig.Recv().Type(), relQualifier), n.Fn.Name())
	}
	return fmt.Sprintf("%s.%s", n.Pkg.Rel, n.Fn.Name())
}

func relQualifier(p *types.Package) string { return p.Name() }

// CallGraph is the module-wide call graph. Nodes and edges are in a
// deterministic order (package, file, and syntax order).
type CallGraph struct {
	Nodes []*CGNode

	byFn        map[*types.Func]*CGNode
	byLit       map[*ast.FuncLit]*CGNode
	pkgOf       map[*types.Package]*Package
	buckets     map[string][]*CGNode        // sigKey -> address-taken nodes
	fieldFuncs  map[*types.Var][]*CGNode    // func-typed field -> stored values
	fieldOpaque map[*types.Var]bool         // field had an unresolvable store
	isParam     map[*types.Var]bool         // parameters of module functions
	paramFlows  map[*types.Var][]*types.Var // param -> fields it is stored into
	named       []*types.Named              // all module named types, for CHA
	implCache   map[*types.Interface][]*types.Func
}

// BuildCallGraph constructs the graph over every package that type-checked.
func BuildCallGraph(pkgs []*Package) *CallGraph {
	cg := &CallGraph{
		byFn:        make(map[*types.Func]*CGNode),
		byLit:       make(map[*ast.FuncLit]*CGNode),
		pkgOf:       make(map[*types.Package]*Package),
		buckets:     make(map[string][]*CGNode),
		fieldFuncs:  make(map[*types.Var][]*CGNode),
		fieldOpaque: make(map[*types.Var]bool),
		isParam:     make(map[*types.Var]bool),
		paramFlows:  make(map[*types.Var][]*types.Var),
		implCache:   make(map[*types.Interface][]*types.Func),
	}
	for _, pkg := range pkgs {
		if pkg.Types == nil || pkg.Info == nil {
			continue
		}
		cg.pkgOf[pkg.Types] = pkg
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			if tn, ok := scope.Lookup(name).(*types.TypeName); ok && !tn.IsAlias() {
				if named, ok := tn.Type().(*types.Named); ok {
					cg.named = append(cg.named, named)
				}
			}
		}
	}
	for _, pkg := range pkgs {
		if pkg.Types == nil {
			continue
		}
		cg.collectNodes(pkg)
	}
	for _, n := range cg.Nodes {
		if sig := n.Sig(); sig != nil {
			for i := 0; i < sig.Params().Len(); i++ {
				cg.isParam[sig.Params().At(i)] = true
			}
		}
	}
	for _, pkg := range pkgs {
		if pkg.Types == nil {
			continue
		}
		cg.collectAddressTaken(pkg)
		cg.collectFieldStores(pkg)
	}
	for _, pkg := range pkgs {
		if pkg.Types == nil {
			continue
		}
		cg.resolveParamFlows(pkg)
	}
	for _, n := range cg.Nodes {
		cg.buildEdges(n)
	}
	return cg
}

// collectNodes registers every function declaration with a body and every
// function literal in pkg.
func (cg *CallGraph) collectNodes(pkg *Package) {
	for _, f := range pkg.Files {
		ast.Inspect(f, func(node ast.Node) bool {
			switch d := node.(type) {
			case *ast.FuncDecl:
				if d.Body == nil {
					return true
				}
				fn, ok := pkg.Info.Defs[d.Name].(*types.Func)
				if !ok {
					return true
				}
				n := &CGNode{Fn: fn, Pkg: pkg, Body: d.Body}
				cg.byFn[fn] = n
				cg.Nodes = append(cg.Nodes, n)
			case *ast.FuncLit:
				n := &CGNode{Lit: d, Pkg: pkg, Body: d.Body}
				cg.byLit[d] = n
				cg.Nodes = append(cg.Nodes, n)
			}
			return true
		})
	}
}

// sigKey normalizes a signature to its parameter/result type shape,
// ignoring the receiver and parameter names, with full package paths so two
// same-named types in different packages never collide.
func sigKey(sig *types.Signature) string {
	var b strings.Builder
	qual := func(p *types.Package) string { return p.Path() }
	b.WriteByte('(')
	for i := 0; i < sig.Params().Len(); i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(types.TypeString(sig.Params().At(i).Type(), qual))
	}
	b.WriteString(")(")
	for i := 0; i < sig.Results().Len(); i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(types.TypeString(sig.Results().At(i).Type(), qual))
	}
	b.WriteByte(')')
	return b.String()
}

// collectAddressTaken finds every reference to a module function that is not
// a direct call — the function is used as a value, so any indirect call with
// a matching signature might land on it — and buckets it by signature shape.
// Function literals are address-taken unless they are invoked on the spot
// (func(){...}()) — those can only be reached through their direct call edge.
func (cg *CallGraph) collectAddressTaken(pkg *Package) {
	called := make(map[*ast.Ident]bool)
	invoked := make(map[*ast.FuncLit]bool)
	for _, f := range pkg.Files {
		ast.Inspect(f, func(node ast.Node) bool {
			call, ok := node.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch fun := ast.Unparen(call.Fun).(type) {
			case *ast.Ident:
				called[fun] = true
			case *ast.SelectorExpr:
				called[fun.Sel] = true
			case *ast.FuncLit:
				invoked[fun] = true
			}
			return true
		})
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(node ast.Node) bool {
			switch e := node.(type) {
			case *ast.Ident:
				if called[e] {
					return true
				}
				fn, ok := pkg.Info.Uses[e].(*types.Func)
				if !ok {
					return true
				}
				if n := cg.byFn[fn]; n != nil {
					key := sigKey(fn.Type().(*types.Signature))
					cg.buckets[key] = append(cg.buckets[key], n)
				}
			case *ast.FuncLit:
				n := cg.byLit[e]
				if n == nil || invoked[e] {
					return true
				}
				if sig := n.Sig(); sig != nil {
					key := sigKey(sig)
					cg.buckets[key] = append(cg.buckets[key], n)
				}
			}
			return true
		})
	}
}

// recordFieldStore resolves one store of rhs into a func-typed struct field.
// A syntactic function value is recorded; when paramHop is set, a bare
// parameter of a module function is deferred to resolveParamFlows (the
// SetWaker pattern: the values passed at that function's call sites are the
// field's values); anything else marks the field opaque.
func (cg *CallGraph) recordFieldStore(info *types.Info, field *types.Var, rhs ast.Expr, paramHop bool) {
	if field == nil {
		return
	}
	if _, ok := field.Type().Underlying().(*types.Signature); !ok {
		return
	}
	switch v := ast.Unparen(rhs).(type) {
	case *ast.FuncLit:
		if n := cg.byLit[v]; n != nil {
			cg.fieldFuncs[field] = append(cg.fieldFuncs[field], n)
			return
		}
	case *ast.Ident:
		if fn, ok := info.Uses[v].(*types.Func); ok {
			if n := cg.byFn[fn]; n != nil {
				cg.fieldFuncs[field] = append(cg.fieldFuncs[field], n)
			}
			return // external function: no module body to reach
		}
		if _, isNil := info.Uses[v].(*types.Nil); isNil {
			return
		}
		if pv, ok := info.Uses[v].(*types.Var); ok && paramHop && cg.isParam[pv] {
			cg.paramFlows[pv] = append(cg.paramFlows[pv], field)
			return
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[v.Sel].(*types.Func); ok {
			if n := cg.byFn[fn]; n != nil {
				cg.fieldFuncs[field] = append(cg.fieldFuncs[field], n)
			}
			return
		}
	}
	cg.fieldOpaque[field] = true
}

// collectFieldStores records, for every func-typed struct field, the function
// values the module stores into it — through assignments and composite
// literals (keyed and positional). A store whose value the builder cannot
// resolve to a syntactic function value (a non-parameter variable, a call
// result) marks the field opaque: calls through it fall back to
// signature-bucket fan-out.
func (cg *CallGraph) collectFieldStores(pkg *Package) {
	info := pkg.Info
	record := func(field *types.Var, rhs ast.Expr) {
		cg.recordFieldStore(info, field, rhs, true)
	}
	structFields := func(e ast.Expr) *types.Struct {
		tv, ok := info.Types[e]
		if !ok || tv.Type == nil {
			return nil
		}
		t := tv.Type
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
		}
		st, _ := t.Underlying().(*types.Struct)
		return st
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(node ast.Node) bool {
			switch e := node.(type) {
			case *ast.AssignStmt:
				if len(e.Lhs) != len(e.Rhs) {
					// Tuple assignment into a field: unresolvable.
					for _, lhs := range e.Lhs {
						if fv := fieldVarOf(info, lhs); fv != nil {
							record(fv, e.Rhs[0])
						}
					}
					return true
				}
				for i := range e.Lhs {
					if fv := fieldVarOf(info, e.Lhs[i]); fv != nil {
						record(fv, e.Rhs[i])
					}
				}
			case *ast.CompositeLit:
				st := structFields(e)
				if st == nil {
					return true
				}
				for i, elt := range e.Elts {
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						if key, ok := kv.Key.(*ast.Ident); ok {
							if fv, ok := info.Uses[key].(*types.Var); ok {
								record(fv, kv.Value)
							}
						}
						continue
					}
					if i < st.NumFields() {
						record(st.Field(i), elt)
					}
				}
			}
			return true
		})
	}
}

// resolveParamFlows finishes the SetWaker pattern: for every parameter known
// to be stored into a func-typed field, the arguments passed at the
// function's statically-resolvable call sites become that field's values.
// Interface dispatch propagates to every CHA implementer's parameter. An
// argument that is itself unresolvable (a second hop) marks the field opaque.
func (cg *CallGraph) resolveParamFlows(pkg *Package) {
	info := pkg.Info
	for _, f := range pkg.Files {
		ast.Inspect(f, func(node ast.Node) bool {
			call, ok := node.(*ast.CallExpr)
			if !ok {
				return true
			}
			var fns []*types.Func
			switch fun := ast.Unparen(call.Fun).(type) {
			case *ast.Ident:
				if fn, ok := info.Uses[fun].(*types.Func); ok {
					fns = append(fns, fn)
				}
			case *ast.SelectorExpr:
				if sel, ok := info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
					fn := sel.Obj().(*types.Func)
					if types.IsInterface(sel.Recv()) {
						fns = cg.implementers(fn)
					} else {
						fns = append(fns, fn)
					}
				} else if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
					fns = append(fns, fn)
				}
			}
			for _, fn := range fns {
				sig, ok := fn.Type().(*types.Signature)
				if !ok {
					continue
				}
				for i, arg := range call.Args {
					if i >= sig.Params().Len() {
						break
					}
					if sig.Variadic() && i == sig.Params().Len()-1 {
						break
					}
					for _, field := range cg.paramFlows[sig.Params().At(i)] {
						cg.recordFieldStore(info, field, arg, false)
					}
				}
			}
			return true
		})
	}
}

// fieldVarOf resolves a selector expression to the struct field it selects,
// or nil when e is not a field selection.
func fieldVarOf(info *types.Info, e ast.Expr) *types.Var {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	return v
}

// bodyInspect walks a node's own body, not descending into nested function
// literals (they are separate nodes); the literal node itself is still
// visited, so callers can record its creation.
func bodyInspect(body *ast.BlockStmt, f func(ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			f(n)
			return false
		}
		return f(n)
	})
}

// buildEdges computes n's outgoing edges.
func (cg *CallGraph) buildEdges(n *CGNode) {
	info := n.Pkg.Info
	addEdge := func(callee *CGNode, call *ast.CallExpr) {
		if callee != nil {
			n.Out = append(n.Out, CGEdge{Callee: callee, Call: call})
		}
	}
	// addConv adds edges for a concrete module value meeting a non-empty
	// interface: the interface's methods on that type become reachable.
	addConv := func(from, to types.Type) {
		if from == nil || to == nil || types.IsInterface(from) {
			return
		}
		iface, ok := to.Underlying().(*types.Interface)
		if !ok || iface.NumMethods() == 0 {
			return
		}
		ms := types.NewMethodSet(from)
		for i := 0; i < iface.NumMethods(); i++ {
			m := iface.Method(i)
			sel := ms.Lookup(m.Pkg(), m.Name())
			if sel == nil {
				continue
			}
			if fn, ok := sel.Obj().(*types.Func); ok {
				addEdge(cg.byFn[fn], nil)
			}
		}
	}
	typeOf := func(e ast.Expr) types.Type {
		if tv, ok := info.Types[e]; ok {
			return tv.Type
		}
		return nil
	}

	bodyInspect(n.Body, func(node ast.Node) bool {
		switch e := node.(type) {
		case *ast.CallExpr:
			cg.callEdges(n, e, addEdge, addConv)
		case *ast.AssignStmt:
			if len(e.Lhs) == len(e.Rhs) {
				for i := range e.Lhs {
					addConv(typeOf(e.Rhs[i]), typeOf(e.Lhs[i]))
				}
			}
		case *ast.ValueSpec:
			if e.Type != nil {
				for _, v := range e.Values {
					addConv(typeOf(v), typeOf(e.Type))
				}
			}
		case *ast.ReturnStmt:
			sig := n.Sig()
			if sig != nil && len(e.Results) == sig.Results().Len() {
				for i, r := range e.Results {
					addConv(typeOf(r), sig.Results().At(i).Type())
				}
			}
		}
		return true
	})
}

// callEdges resolves one call expression in n's body.
func (cg *CallGraph) callEdges(n *CGNode, call *ast.CallExpr,
	addEdge func(*CGNode, *ast.CallExpr), addConv func(from, to types.Type)) {
	info := n.Pkg.Info
	fun := ast.Unparen(call.Fun)

	// Conversions are not calls; T(x) may still box (hotalloc's concern).
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		return
	}

	// Direct literal invocation: func(){...}().
	if lit, ok := fun.(*ast.FuncLit); ok {
		addEdge(cg.byLit[lit], call)
		cg.argEdges(n, call, nil, addEdge, addConv)
		return
	}

	var static *CGNode
	resolved := false
	switch f := fun.(type) {
	case *ast.Ident:
		switch obj := info.Uses[f].(type) {
		case *types.Builtin:
			return
		case *types.Func:
			static = cg.byFn[obj]
			resolved = true
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[f]; ok && sel.Kind() == types.MethodVal {
			fn := sel.Obj().(*types.Func)
			resolved = true
			if types.IsInterface(sel.Recv()) {
				// Interface dispatch: CHA over module implementations.
				for _, impl := range cg.implementers(fn) {
					addEdge(cg.byFn[impl], call)
				}
			} else {
				static = cg.byFn[fn]
			}
		} else if obj, ok := info.Uses[f.Sel].(*types.Func); ok {
			// Package-qualified call or method expression.
			static = cg.byFn[obj]
			resolved = true
		}
	}
	if static != nil {
		addEdge(static, call)
	}
	if !resolved {
		// Indirect call through a func-typed value. A call through a struct
		// field resolves to exactly the values stored into that field, unless
		// a store was opaque; anything else (parameter, local, opaque field)
		// fans out to the signature bucket of address-taken functions.
		if fv := fieldVarOf(info, fun); fv != nil && !cg.fieldOpaque[fv] {
			for _, callee := range cg.fieldFuncs[fv] {
				addEdge(callee, call)
			}
		} else if t, ok := info.Types[fun]; ok && t.Type != nil {
			if sig, ok := t.Type.Underlying().(*types.Signature); ok {
				for _, callee := range cg.buckets[sigKey(sig)] {
					addEdge(callee, call)
				}
			}
		}
	}
	cg.argEdges(n, call, static, addEdge, addConv)
}

// argEdges handles a call's arguments: interface-conversion edges at
// parameter boundaries, and function values escaping into external callees.
func (cg *CallGraph) argEdges(n *CGNode, call *ast.CallExpr, static *CGNode,
	addEdge func(*CGNode, *ast.CallExpr), addConv func(from, to types.Type)) {
	info := n.Pkg.Info
	var sig *types.Signature
	if tv, ok := info.Types[call.Fun]; ok && tv.Type != nil {
		sig, _ = tv.Type.Underlying().(*types.Signature)
	}
	for i, arg := range call.Args {
		if sig != nil && sig.Params().Len() > 0 {
			pi := i
			if pi >= sig.Params().Len() {
				pi = sig.Params().Len() - 1
			}
			pt := sig.Params().At(pi).Type()
			if sig.Variadic() && pi == sig.Params().Len()-1 && !call.Ellipsis.IsValid() {
				if sl, ok := pt.(*types.Slice); ok {
					pt = sl.Elem()
				}
			}
			if tv, ok := info.Types[arg]; ok {
				addConv(tv.Type, pt)
			}
		}
		if static != nil {
			continue // module callee: its own body's indirect calls cover f
		}
		// Function value escaping into an unresolved or external callee:
		// treat it as called here, since the real call site is invisible.
		switch a := ast.Unparen(arg).(type) {
		case *ast.FuncLit:
			addEdge(cg.byLit[a], nil)
		case *ast.Ident:
			if fn, ok := info.Uses[a].(*types.Func); ok {
				addEdge(cg.byFn[fn], nil)
			}
		case *ast.SelectorExpr:
			if fn, ok := info.Uses[a.Sel].(*types.Func); ok {
				addEdge(cg.byFn[fn], nil)
			} else if fv := fieldVarOf(info, a); fv != nil && !cg.fieldOpaque[fv] {
				// A func-typed field value escaping: whatever the module
				// stored there may be called by the invisible callee.
				for _, callee := range cg.fieldFuncs[fv] {
					addEdge(callee, nil)
				}
			}
		}
	}
}

// implementers returns, for an interface method m, the concrete module
// methods that implement it — the CHA callee set for a dynamic dispatch.
func (cg *CallGraph) implementers(m *types.Func) []*types.Func {
	iface, ok := m.Type().(*types.Signature).Recv().Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	if cached, ok := cg.implCache[iface]; ok {
		return filterByName(cached, m)
	}
	var all []*types.Func
	for _, named := range cg.named {
		if types.IsInterface(named) {
			continue
		}
		ptr := types.NewPointer(named)
		if !types.Implements(named, iface) && !types.Implements(ptr, iface) {
			continue
		}
		ms := types.NewMethodSet(ptr)
		for i := 0; i < iface.NumMethods(); i++ {
			im := iface.Method(i)
			sel := ms.Lookup(im.Pkg(), im.Name())
			if sel == nil {
				continue
			}
			if fn, ok := sel.Obj().(*types.Func); ok {
				all = append(all, fn)
			}
		}
	}
	cg.implCache[iface] = all
	return filterByName(all, m)
}

// filterByName keeps the concrete methods matching the dispatched name.
func filterByName(fns []*types.Func, m *types.Func) []*types.Func {
	var out []*types.Func
	for _, fn := range fns {
		if fn.Name() == m.Name() {
			out = append(out, fn)
		}
	}
	return out
}

// NodeOf returns the node for a declared function or method object.
func (cg *CallGraph) NodeOf(fn *types.Func) *CGNode { return cg.byFn[fn] }

// LitNode returns the node for a function literal.
func (cg *CallGraph) LitNode(lit *ast.FuncLit) *CGNode { return cg.byLit[lit] }

// PackageOf maps a types package back to the loaded package.
func (cg *CallGraph) PackageOf(p *types.Package) *Package { return cg.pkgOf[p] }

// Lookup resolves a FuncRef to its node, or nil when the module has no such
// function (analyzers treat that as "entry point absent" and go quiet; the
// real tree pins resolution with a dedicated test).
func (cg *CallGraph) Lookup(ref FuncRef) *CGNode {
	for _, n := range cg.Nodes {
		if n.Fn == nil || n.Pkg.Rel != ref.Package || n.Fn.Name() != ref.Name {
			continue
		}
		recv := ""
		if r := n.Sig().Recv(); r != nil {
			t := r.Type()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if named, ok := t.(*types.Named); ok {
				recv = named.Obj().Name()
			}
		}
		if recv == ref.Recv {
			return n
		}
	}
	return nil
}

// Reachable returns the transitive closure over Out edges from roots,
// including the roots themselves.
func (cg *CallGraph) Reachable(roots []*CGNode) map[*CGNode]bool {
	seen := make(map[*CGNode]bool)
	var stack []*CGNode
	for _, r := range roots {
		if r != nil && !seen[r] {
			seen[r] = true
			stack = append(stack, r)
		}
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range n.Out {
			if !seen[e.Callee] {
				seen[e.Callee] = true
				stack = append(stack, e.Callee)
			}
		}
	}
	return seen
}
