// The bounded trace ring and its Chrome trace-event export. Events are
// stamped in simulated cycles and stored in a fixed-capacity ring (oldest
// events are overwritten, with a drop counter), so tracing a long run costs
// constant memory and an instrumented simulation stays deterministic: the
// ring contents are a pure function of the simulated event stream.
//
// WriteChrome renders the ring in the Chrome trace-event JSON format, which
// Perfetto (https://ui.perfetto.dev) loads directly: each instrumented
// component is a named track (thread), link transfers and warp memory
// operations are complete ("X") spans, and one simulated cycle maps to one
// displayed microsecond. Loading a Fig 8 trace visually shows SM1's write
// bursts stalling SM0's packets at the shared TPC mux.

package probe

import (
	"encoding/json"
	"fmt"
	"io"
)

// DefaultTraceCap is the ring capacity used when EnableTrace is called with
// a non-positive cap: enough for every event of a quick contention run while
// bounding a saturating run to a few MB.
const DefaultTraceCap = 1 << 17

// TrackID identifies a named event track (one Perfetto "thread" per
// instrumented component).
type TrackID int32

// EventKind distinguishes span events (duration) from instant markers.
type EventKind uint8

const (
	// Span is a complete event with a start cycle and a duration.
	Span EventKind = iota
	// Instant is a point-in-time marker.
	Instant
)

// Event is one trace record. TS and Dur are in simulated cycles.
type Event struct {
	Track TrackID
	Kind  EventKind
	Name  string
	TS    uint64
	Dur   uint64
}

// Trace is a bounded ring of events plus the track name table. All methods
// are safe on a nil receiver (the tracing-disabled fast path).
type Trace struct {
	tracks []string
	byName map[string]TrackID

	ring    []Event
	next    int
	wrapped bool
	dropped uint64
}

func newTrace(cap int) *Trace {
	if cap < 1 {
		cap = DefaultTraceCap
	}
	return &Trace{
		byName: map[string]TrackID{},
		ring:   make([]Event, 0, cap),
	}
}

// Track returns the id of the named track, creating it on first use. Returns
// 0 on a nil trace; emitting against a nil trace is a no-op anyway.
func (t *Trace) Track(name string) TrackID {
	if t == nil {
		return 0
	}
	if id, ok := t.byName[name]; ok {
		return id
	}
	id := TrackID(len(t.tracks))
	t.tracks = append(t.tracks, name)
	t.byName[name] = id
	return id
}

// Span records a complete event covering [start, end] cycles on the track.
func (t *Trace) Span(track TrackID, name string, start, end uint64) {
	if t == nil {
		return
	}
	dur := uint64(0)
	if end > start {
		dur = end - start
	}
	t.push(Event{Track: track, Kind: Span, Name: name, TS: start, Dur: dur})
}

// Instant records a point event at cycle ts on the track.
func (t *Trace) Instant(track TrackID, name string, ts uint64) {
	if t == nil {
		return
	}
	t.push(Event{Track: track, Kind: Instant, Name: name, TS: ts})
}

func (t *Trace) push(e Event) {
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, e)
		return
	}
	t.ring[t.next] = e
	t.next++
	if t.next == cap(t.ring) {
		t.next = 0
	}
	t.wrapped = true
	t.dropped++
}

// Events returns the retained events in emission order (oldest first). The
// slice is freshly allocated.
func (t *Trace) Events() []Event {
	if t == nil {
		return nil
	}
	if !t.wrapped {
		return append([]Event(nil), t.ring...)
	}
	out := make([]Event, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// Dropped returns how many events were overwritten because the ring was
// full.
func (t *Trace) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// Tracks returns the registered track names indexed by TrackID.
func (t *Trace) Tracks() []string {
	if t == nil {
		return nil
	}
	return append([]string(nil), t.tracks...)
}

// chromeEvent is one record of the Chrome trace-event format. Fields are
// kept to the subset Perfetto reads; ts/dur are emitted in "microseconds"
// that are really simulated cycles.
type chromeEvent struct {
	Name  string            `json:"name"`
	Phase string            `json:"ph"`
	TS    uint64            `json:"ts"`
	Dur   *uint64           `json:"dur,omitempty"`
	PID   int               `json:"pid"`
	TID   int               `json:"tid"`
	Scope string            `json:"s,omitempty"`
	Args  map[string]string `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	OtherData       struct {
		TimeUnit string `json:"time_unit"`
		Dropped  uint64 `json:"dropped_events"`
	} `json:"otherData"`
}

// WriteChrome renders the trace as Chrome trace-event JSON, loadable in
// Perfetto or chrome://tracing. One metadata record names each track; span
// events become "X" (complete) records and instants become "i" records. The
// output is deterministic: track order is registration order and events are
// emitted in ring order.
func WriteChrome(w io.Writer, t *Trace) error {
	var doc chromeTrace
	doc.DisplayTimeUnit = "ms"
	doc.OtherData.TimeUnit = "simulated GPU cycles (rendered as us)"
	if t != nil {
		doc.OtherData.Dropped = t.dropped
		for id, name := range t.tracks {
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name:  "thread_name",
				Phase: "M",
				TID:   id,
				Args:  map[string]string{"name": name},
			})
		}
		for _, e := range t.Events() {
			ce := chromeEvent{Name: e.Name, TS: e.TS, TID: int(e.Track)}
			switch e.Kind {
			case Span:
				ce.Phase = "X"
				dur := e.Dur
				if dur == 0 {
					dur = 1 // zero-width spans vanish in Perfetto
				}
				ce.Dur = &dur
			case Instant:
				ce.Phase = "i"
				ce.Scope = "t"
			default:
				return fmt.Errorf("probe: unknown event kind %d", e.Kind)
			}
			doc.TraceEvents = append(doc.TraceEvents, ce)
		}
	}
	if doc.TraceEvents == nil {
		doc.TraceEvents = []chromeEvent{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
