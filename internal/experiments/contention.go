package experiments

import (
	"fmt"

	"gpunoc/internal/config"
	"gpunoc/internal/reveng"
	"gpunoc/internal/stats"
)

// The contention / reverse-engineering artifacts (§3) register themselves
// with the experiment registry; cmd/ccbench and bench_test.go discover them
// from there.
func init() {
	MustRegister(Experiment{
		ID: "fig2", Order: 20,
		Title:   "TPC pairing: SM0's execution time against every co-activated SM",
		Section: "§3.1, Figure 2",
		Run:     Fig2,
		Check:   func(_ *config.Config, f *Figure) error { return CheckFig2(f) },
		Metrics: func(f *Figure) map[string]float64 {
			peak := 0.0
			for _, y := range f.Series[0].Y {
				if y > peak {
					peak = y
				}
			}
			return map[string]float64{"peak-slowdown-x": peak}
		},
	})
	MustRegister(Experiment{
		ID: "fig3", Order: 30,
		Title:   "GPC grouping probe: reference TPC latency per probe TPC",
		Section: "§3.2, Figure 3",
		Run: func(cfg *config.Config, opt Options) (*Figure, error) {
			return Fig3(cfg, fig3Refs(cfg), opt)
		},
		Check: func(cfg *config.Config, f *Figure) error {
			if want := len(fig3Refs(cfg)); len(f.Series) != want {
				return fmt.Errorf("fig3: %d series, want %d", len(f.Series), want)
			}
			return nil
		},
	})
	MustRegister(Experiment{
		ID: "fig4", Order: 40,
		Title:   "Recovered TPC-to-GPC mapping",
		Section: "§3.3, Figure 4",
		Run:     Fig4,
		Metrics: func(f *Figure) map[string]float64 {
			return map[string]float64{"groups": float64(len(f.Rows))}
		},
	})
	MustRegister(Experiment{
		ID: "fig5", Order: 50,
		Title:   "Read/write contention asymmetry on the TPC and GPC channels",
		Section: "§3.4, Figure 5",
		Run:     Fig5,
		Check:   func(_ *config.Config, f *Figure) error { return CheckFig5(f) },
		Metrics: func(f *Figure) map[string]float64 {
			m := map[string]float64{}
			if s, ok := f.seriesByName("GPC read"); ok && len(s.Y) > 0 {
				m["gpc-read-slowdown-x"] = s.Y[len(s.Y)-1]
			}
			if s, ok := f.seriesByName("TPC write"); ok && len(s.Y) > 0 {
				m["tpc-write-slowdown-x"] = s.Y[len(s.Y)-1]
			}
			return m
		},
	})
	MustRegister(Experiment{
		ID: "fig6", Order: 60,
		Title:   "clock() survey and the §4.1 skew statistics",
		Section: "§4.1, Figure 6",
		Run:     Fig6,
	})
	MustRegister(Experiment{
		ID: "fig8", Order: 70,
		Title:   "Mux sharing: SM0's time versus contender traffic fraction",
		Section: "§3.4, Figure 8",
		Run:     Fig8,
		Check:   func(_ *config.Config, f *Figure) error { return CheckFig8(f) },
	})
	MustRegister(Experiment{
		ID: "fig11", Order: 100,
		Title:   "GPC-channel leakage slope, same-GPC vs different-GPC senders",
		Section: "§4.5, Figure 11",
		Run:     Fig11,
		Check:   func(_ *config.Config, f *Figure) error { return CheckFig11(f) },
	})
}

// fig3Refs picks the reference TPCs Fig 3 probes from: TPC0 always, plus
// TPC5 when the topology has one (the paper shows both).
func fig3Refs(cfg *config.Config) []int {
	refs := []int{0}
	if cfg.NumTPCs() > 5 {
		refs = append(refs, 5)
	}
	return refs
}

// Fig2 regenerates Figure 2: the Algorithm 1 write benchmark runs on SM0
// concurrently with each other SM; only the TPC mate (SM1) doubles SM0's
// execution time.
func Fig2(cfg *config.Config, opt Options) (*Figure, error) {
	f := &Figure{
		ID:     "fig2",
		Title:  "Execution time of the synthetic benchmark on SM0 vs one other SM",
		XLabel: "other SM id",
		YLabel: "SM0 time normalized to solo",
	}
	warps := 4
	ops := opt.pick(8, 24)
	points, err := reveng.TPCSweep(cfg, 0, warps, ops)
	if err != nil {
		return nil, err
	}
	var xs, ys []float64
	for _, p := range points {
		xs = append(xs, float64(p.OtherSM))
		ys = append(ys, p.Normalized)
	}
	f.addSeries("SM0 normalized time", xs, ys)
	if pair, err := reveng.PairedSM(points); err == nil {
		f.note("inferred TPC mate of SM0: SM%d (paper: SM1)", pair)
	} else {
		f.note("no TPC mate identified: %v", err)
	}
	return f, nil
}

// CheckFig2 asserts the Fig 2 shape: only SM1 degrades SM0 (by ~2x).
func CheckFig2(f *Figure) error {
	s, ok := f.seriesByName("SM0 normalized time")
	if !ok {
		return fmt.Errorf("fig2: missing series")
	}
	for i, x := range s.X {
		switch {
		case x == 1 && (s.Y[i] < 1.7 || s.Y[i] > 2.3):
			return fmt.Errorf("fig2: TPC mate contention %.2fx, want ~2x", s.Y[i])
		case x != 1 && s.Y[i] > 1.3:
			return fmt.Errorf("fig2: SM%d shows %.2fx contention", int(x), s.Y[i])
		}
	}
	return nil
}

// backgroundFor picks the number of random co-activated TPCs for the Fig 3
// protocol: the paper's 5 on a full GPU, a deterministic two-TPC probe when
// the topology is too small for randomized background to leave headroom.
func backgroundFor(cfg *config.Config) int {
	if cfg.NumTPCs() <= 8 {
		return -1
	}
	return 5
}

// Fig3 regenerates Figure 3 for the given reference TPCs (the paper shows
// TPC0 and TPC5): mean execution time of the reference under randomized
// co-activation, per probe TPC.
func Fig3(cfg *config.Config, refTPCs []int, opt Options) (*Figure, error) {
	f := &Figure{
		ID:     "fig3",
		Title:  "Performance measurements identifying SM/TPC placement across GPCs",
		XLabel: "probe TPC id",
		YLabel: "reference TPC mean execution time (cycles)",
	}
	probeOpt := reveng.GPCProbeOptions{
		Reps:       opt.pick(6, 200),
		Seed:       opt.seed(),
		Ops:        opt.pick(8, 12),
		Background: backgroundFor(cfg),
	}
	for _, ref := range refTPCs {
		points, err := reveng.GPCSweep(cfg, ref, probeOpt)
		if err != nil {
			return nil, err
		}
		var xs, ys []float64
		for _, p := range points {
			xs = append(xs, float64(p.ProbeTPC))
			ys = append(ys, p.MeanTime)
		}
		f.addSeries(fmt.Sprintf("ref TPC%d mean", ref), xs, ys)
		group := reveng.GroupFromSweep(ref, points, 0)
		f.note("TPC%d group (elevated probes): %v (ground truth GPC%d: %v)",
			ref, group, cfg.GPCOfTPC(ref), cfg.TPCsOfGPC(cfg.GPCOfTPC(ref)))
	}
	return f, nil
}

// Fig4 regenerates Figure 4: the full logical-to-physical TPC->GPC mapping
// recovered purely from timing, compared against ground truth.
func Fig4(cfg *config.Config, opt Options) (*Figure, error) {
	f := &Figure{
		ID:     "fig4",
		Title:  "Logical to physical core mapping (recovered TPC->GPC groups)",
		Header: []string{"group", "recovered TPCs", "ground-truth GPC", "match"},
	}
	probeOpt := reveng.GPCProbeOptions{
		Reps:       opt.pick(6, 60),
		Seed:       opt.seed(),
		Ops:        opt.pick(8, 12),
		Background: backgroundFor(cfg),
	}
	// The adaptive quartet protocol recovers large topologies exactly with
	// a few hundred runs; it falls back to the statistical sweep wherever
	// the quartet test cannot apply (GPCs of fewer than four TPCs).
	groups, err := reveng.MapGPCsAdaptive(cfg, probeOpt)
	if err != nil {
		return nil, err
	}
	matched := 0
	for i, group := range groups {
		gt := cfg.GPCOfTPC(group[0])
		want := cfg.TPCsOfGPC(gt)
		match := len(group) == len(want)
		for j := range want {
			if j >= len(group) || group[j] != want[j] {
				match = false
			}
		}
		if match {
			matched++
		}
		f.Rows = append(f.Rows, []string{
			fmt.Sprintf("%d", i),
			fmt.Sprintf("%v", group),
			fmt.Sprintf("GPC%d %v", gt, want),
			fmt.Sprintf("%v", match),
		})
	}
	f.note("%d/%d recovered groups match ground truth exactly", matched, len(groups))
	return f, nil
}

// Fig5 regenerates Figure 5: (a) read vs write contention on the TPC channel
// and (b) on the GPC channel as the number of activated TPCs grows.
func Fig5(cfg *config.Config, opt Options) (*Figure, error) {
	f := &Figure{
		ID:     "fig5",
		Title:  "Performance impact of read and write accesses on TPC and GPC channels",
		XLabel: "activated TPCs (GPC series) / contention (TPC series)",
		YLabel: "normalized execution time",
	}
	warps := 4
	ops := opt.pick(8, 24)

	// (a) TPC channel: SM0 solo vs SM0+SM1, for writes and reads.
	for _, write := range []bool{true, false} {
		name := "TPC read"
		if write {
			name = "TPC write"
		}
		solo, err := soloTime(cfg, 0, ops, warps, write)
		if err != nil {
			return nil, err
		}
		times, err := runActivations(cfg, []activation{
			{sm: 0, ops: ops, warps: warps, write: write},
			{sm: 1, ops: ops * 3, warps: warps, write: write},
		})
		if err != nil {
			return nil, err
		}
		f.addSeries(name, []float64{0, 1}, []float64{1, float64(times[0]) / float64(solo)})
	}

	// (b) GPC channel: activate 1..K TPCs of GPC0 (both SMs each) and
	// measure the first TPC's slowest SM. The series normalizes to the
	// N=1 point, so intra-TPC sharing (present at every N) cancels out
	// and only the GPC-channel effect remains — matching the paper's
	// presentation where 1 activated TPC sits at 1.0.
	gpcTPCs := cfg.TPCsOfGPC(0)
	for _, write := range []bool{true, false} {
		name := "GPC read"
		if write {
			name = "GPC write"
		}
		ref := gpcTPCs[0]
		var solo uint64
		var xs, ys []float64
		for n := 1; n <= len(gpcTPCs); n++ {
			var acts []activation
			for _, tpc := range gpcTPCs[:n] {
				for _, sm := range cfg.SMsOfTPC(tpc) {
					o := ops
					if tpc != ref {
						o = ops * 3
					}
					acts = append(acts, activation{sm: sm, ops: o, warps: warps, write: write})
				}
			}
			times, err := runActivations(cfg, acts)
			if err != nil {
				return nil, err
			}
			var refTime uint64
			for _, sm := range cfg.SMsOfTPC(ref) {
				if times[sm] > refTime {
					refTime = times[sm]
				}
			}
			if n == 1 {
				solo = refTime
			}
			xs = append(xs, float64(n))
			ys = append(ys, float64(refTime)/float64(solo))
		}
		f.addSeries(name, xs, ys)
	}
	return f, nil
}

// CheckFig5 asserts the §3.4 asymmetry: TPC writes ~2x, TPC reads ~1x;
// GPC writes mild (~1.2x) at full activation, GPC reads strong (~2x).
func CheckFig5(f *Figure) error {
	last := func(name string) (float64, error) {
		s, ok := f.seriesByName(name)
		if !ok || len(s.Y) == 0 {
			return 0, fmt.Errorf("fig5: missing series %q", name)
		}
		return s.Y[len(s.Y)-1], nil
	}
	tw, err := last("TPC write")
	if err != nil {
		return err
	}
	tr, err := last("TPC read")
	if err != nil {
		return err
	}
	gw, err := last("GPC write")
	if err != nil {
		return err
	}
	gr, err := last("GPC read")
	if err != nil {
		return err
	}
	switch {
	case tw < 1.7 || tw > 2.4:
		return fmt.Errorf("fig5: TPC write contention %.2fx, want ~2x", tw)
	case tr > 1.35:
		return fmt.Errorf("fig5: TPC read contention %.2fx, want ~1x", tr)
	case gw > 1.45:
		return fmt.Errorf("fig5: GPC write contention %.2fx, want mild (~1.2x)", gw)
	case gr < 1.5:
		return fmt.Errorf("fig5: GPC read contention %.2fx, want strong (~2x)", gr)
	case gr < gw:
		return fmt.Errorf("fig5: GPC reads (%.2fx) should contend more than writes (%.2fx)", gr, gw)
	}
	return nil
}

// Fig6 regenerates Figure 6: clock register values across all SMs, plus the
// repeated-run skew statistics of §4.1.
func Fig6(cfg *config.Config, opt Options) (*Figure, error) {
	f := &Figure{
		ID:     "fig6",
		Title:  "Distribution of clock() return values across SMs",
		XLabel: "SM id",
		YLabel: "clock() value",
	}
	samples, err := reveng.ClockSurvey(cfg)
	if err != nil {
		return nil, err
	}
	var xs, ys []float64
	for _, s := range samples {
		xs = append(xs, float64(s.SM))
		ys = append(ys, float64(s.Value))
	}
	f.addSeries("clock()", xs, ys)
	st, err := reveng.MeasureSkew(cfg, opt.pick(5, 100))
	if err != nil {
		return nil, err
	}
	f.note("mean intra-TPC skew %.1f cycles (max %d); paper: <5", st.MeanTPCSkew, st.MaxTPCSkew)
	f.note("mean intra-GPC skew %.1f cycles (max %d); paper: <15", st.MeanGPCSkew, st.MaxGPCSkew)
	return f, nil
}

// Fig8 regenerates Figure 8: SM0's execution time as the amount of memory
// traffic from SM1 (same TPC) or SM12 (different TPC) grows.
func Fig8(cfg *config.Config, opt Options) (*Figure, error) {
	f := &Figure{
		ID:     "fig8",
		Title:  "SM0 execution time vs fraction of memory access from SM1/SM12",
		XLabel: "contender traffic as fraction of SM0's",
		YLabel: "SM0 time normalized to solo",
	}
	warps := 4
	ops := opt.pick(10, 25)
	solo, err := soloTime(cfg, 0, ops, warps, true)
	if err != nil {
		return nil, err
	}
	otherTPC := 12
	if otherTPC >= cfg.NumSMs() {
		otherTPC = cfg.SMsOfTPC(1)[0]
	}
	fractions := []float64{0, 0.12, 0.24, 0.36, 0.48, 0.6, 0.72, 0.84, 0.96}
	for _, contender := range []int{1, otherTPC} {
		var xs, ys []float64
		for _, frac := range fractions {
			acts := []activation{{sm: 0, ops: ops, warps: warps, write: true}}
			if c := int(frac * float64(ops)); c > 0 {
				acts = append(acts, activation{sm: contender, ops: c, warps: warps, write: true})
			}
			times, err := runActivations(cfg, acts)
			if err != nil {
				return nil, err
			}
			xs = append(xs, frac)
			ys = append(ys, float64(times[0])/float64(solo))
		}
		f.addSeries(fmt.Sprintf("SM %d", contender), xs, ys)
	}
	return f, nil
}

// CheckFig8 asserts the Fig 8 shape: the same-TPC contender degrades SM0
// roughly linearly toward ~2x while the different-TPC contender leaves it
// flat.
func CheckFig8(f *Figure) error {
	same, ok := f.seriesByName("SM 1")
	if !ok {
		return fmt.Errorf("fig8: missing SM 1 series")
	}
	_, slope, r2, err := stats.LinearFit(same.X, same.Y)
	if err != nil {
		return err
	}
	if slope < 0.6 || r2 < 0.85 {
		return fmt.Errorf("fig8: same-TPC series not linear-increasing (slope %.2f, r2 %.2f)", slope, r2)
	}
	if final := same.Y[len(same.Y)-1]; final < 1.6 {
		return fmt.Errorf("fig8: same-TPC contention only reaches %.2fx", final)
	}
	for _, s := range f.Series {
		if s.Name == "SM 1" {
			continue
		}
		for i := range s.Y {
			if s.Y[i] > 1.3 {
				return fmt.Errorf("fig8: different-TPC series rises to %.2fx", s.Y[i])
			}
		}
	}
	return nil
}

// Fig11 regenerates Figure 11: the GPC channel's information leakage — the
// reference TPC's execution time as read traffic from TPCs of the same vs a
// different GPC grows.
func Fig11(cfg *config.Config, opt Options) (*Figure, error) {
	f := &Figure{
		ID:     "fig11",
		Title:  "GPC channel information leakage (read contention by traffic fraction)",
		XLabel: "sender traffic as fraction of reference's",
		YLabel: "reference TPC time normalized to solo",
	}
	warps := 4
	ops := opt.pick(10, 25)
	refTPC := cfg.TPCsOfGPC(0)[0]
	refSMs := cfg.SMsOfTPC(refTPC)

	var refActs []activation
	for _, sm := range refSMs {
		refActs = append(refActs, activation{sm: sm, ops: ops, warps: warps, write: false})
	}
	baseTimes, err := runActivations(cfg, refActs)
	if err != nil {
		return nil, err
	}
	var solo uint64
	for _, sm := range refSMs {
		if baseTimes[sm] > solo {
			solo = baseTimes[sm]
		}
	}

	sameGPC := cfg.TPCsOfGPC(0)[1:]
	otherGPC := cfg.TPCsOfGPC(1 % cfg.NumGPCs)
	fractions := []float64{0, 0.24, 0.48, 0.72, 0.96}
	for _, series := range []struct {
		name string
		tpcs []int
	}{
		{"TPCs from same GPC", sameGPC},
		{"TPCs from different GPC", otherGPC},
	} {
		var xs, ys []float64
		for _, frac := range fractions {
			acts := append([]activation(nil), refActs...)
			if c := int(frac * float64(ops)); c > 0 {
				for _, tpc := range series.tpcs {
					for _, sm := range cfg.SMsOfTPC(tpc) {
						acts = append(acts, activation{sm: sm, ops: c, warps: warps, write: false})
					}
				}
			}
			times, err := runActivations(cfg, acts)
			if err != nil {
				return nil, err
			}
			var refTime uint64
			for _, sm := range refSMs {
				if times[sm] > refTime {
					refTime = times[sm]
				}
			}
			xs = append(xs, frac)
			ys = append(ys, float64(refTime)/float64(solo))
		}
		f.addSeries(series.name, xs, ys)
	}
	return f, nil
}

// CheckFig11 asserts that same-GPC senders raise the reference's latency
// while different-GPC senders do not, and that the same-GPC slope is far
// below the TPC channel's (the speedup effect of §4.5).
func CheckFig11(f *Figure) error {
	same, ok := f.seriesByName("TPCs from same GPC")
	if !ok {
		return fmt.Errorf("fig11: missing same-GPC series")
	}
	diff, ok := f.seriesByName("TPCs from different GPC")
	if !ok {
		return fmt.Errorf("fig11: missing different-GPC series")
	}
	sFinal := same.Y[len(same.Y)-1]
	dFinal := diff.Y[len(diff.Y)-1]
	if sFinal <= dFinal+0.03 {
		return fmt.Errorf("fig11: same-GPC final %.3f not above different-GPC %.3f", sFinal, dFinal)
	}
	if dFinal > 1.15 {
		return fmt.Errorf("fig11: different-GPC senders leaked %.3fx", dFinal)
	}
	return nil
}
