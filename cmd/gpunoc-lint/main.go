// Command gpunoc-lint runs the repository's static-analysis suite: the
// layering, determinism, tickmodel, and purity analyzers from internal/lint,
// which mechanically enforce the invariants documented in
// docs/ARCHITECTURE.md ("Enforced invariants").
//
// Usage:
//
//	go run ./cmd/gpunoc-lint ./...              # lint the whole module
//	go run ./cmd/gpunoc-lint ./internal/noc     # one package
//	go run ./cmd/gpunoc-lint -rules             # dump the rule tables as JSON
//	go run ./cmd/gpunoc-lint -format sarif ./...# SARIF 2.1.0 for CI upload
//
// Diagnostics print as "file:line: [rule] message" (-format text, the
// default), a JSON array (-format json), or a SARIF 2.1.0 log with
// module-root-relative URIs (-format sarif, consumed by CI's upload-sarif
// annotate step). The exit status is 0 when the tree is clean, 1 when there
// are findings, and 2 on a usage or load error. Individual findings can be
// waived in source with "//lint:allow <rule> <reason>" on the offending line
// or the line above.
//
// The whole-program analyzers (shardsafety, hotalloc) compute reachability
// from entry points in internal/engine; linting a sub-pattern that excludes
// those packages turns them into no-ops, so CI always lints "./...".
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"gpunoc/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	flags := flag.NewFlagSet("gpunoc-lint", flag.ExitOnError)
	rulesFlag := flags.Bool("rules", false, "print the active rule configuration as JSON and exit")
	jsonFlag := flags.Bool("json", false, "shorthand for -format json")
	formatFlag := flags.String("format", "text", "output format: text, json, or sarif")
	flags.Usage = func() {
		fmt.Fprintf(flags.Output(), "usage: gpunoc-lint [-rules] [-format text|json|sarif] [packages]\n\n"+
			"Packages are directory patterns relative to the current directory\n"+
			"(default \"./...\"). See docs/ARCHITECTURE.md, \"Enforced invariants\".\n\n")
		flags.PrintDefaults()
	}
	flags.Parse(os.Args[1:])
	format := *formatFlag
	if *jsonFlag {
		format = "json"
	}
	switch format {
	case "text", "json", "sarif":
	default:
		fmt.Fprintf(os.Stderr, "gpunoc-lint: unknown format %q (want text, json, or sarif)\n", format)
		return 2
	}

	rules := lint.DefaultRules()
	if *rulesFlag {
		out, err := rules.JSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "gpunoc-lint: %v\n", err)
			return 2
		}
		fmt.Println(string(out))
		return 0
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "gpunoc-lint: %v\n", err)
		return 2
	}
	root, module, err := findModule(cwd)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gpunoc-lint: %v\n", err)
		return 2
	}
	if module != rules.Module {
		fmt.Fprintf(os.Stderr, "gpunoc-lint: module %q does not match the rule table's module %q\n", module, rules.Module)
		return 2
	}

	patterns := flags.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	rel, err := filepath.Rel(root, cwd)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gpunoc-lint: %v\n", err)
		return 2
	}
	for i, p := range patterns {
		patterns[i] = rebase(rel, p)
	}

	loader := lint.Loader{ModulePath: module, Dir: root}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gpunoc-lint: %v\n", err)
		return 2
	}
	if len(pkgs) == 0 {
		fmt.Fprintf(os.Stderr, "gpunoc-lint: no packages match %s\n", strings.Join(patterns, " "))
		return 2
	}

	diags := lint.Run(pkgs, rules, lint.Analyzers())

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	switch format {
	case "sarif":
		// SARIF URIs are module-root-relative regardless of cwd: the CI
		// upload action resolves them against the repository checkout.
		out, err := lint.SARIF(diags, lint.Analyzers(), root)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gpunoc-lint: %v\n", err)
			return 2
		}
		w.Write(out)
		w.WriteByte('\n')
	case "json":
		relativize(diags, cwd)
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(os.Stderr, "gpunoc-lint: %v\n", err)
			return 2
		}
	default:
		relativize(diags, cwd)
		for _, d := range diags {
			fmt.Fprintln(w, d)
		}
	}
	if len(diags) > 0 {
		w.Flush()
		fmt.Fprintf(os.Stderr, "gpunoc-lint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// relativize rewrites diagnostic filenames relative to the working directory
// for human-facing output.
func relativize(diags []lint.Diagnostic, cwd string) {
	for i := range diags {
		if r, err := filepath.Rel(cwd, diags[i].Pos.Filename); err == nil {
			diags[i].Pos.Filename = r
		}
	}
}

// findModule walks upward from dir to the enclosing go.mod and returns the
// module root and module path.
func findModule(dir string) (root, module string, err error) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("%s: no module line", filepath.Join(d, "go.mod"))
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		d = parent
	}
}

// rebase rewrites a cwd-relative pattern into a module-root-relative one.
func rebase(cwdRel, pattern string) string {
	p := strings.TrimPrefix(filepath.ToSlash(pattern), "./")
	if cwdRel == "." || cwdRel == "" {
		return p
	}
	base := filepath.ToSlash(cwdRel)
	if p == "." {
		return base
	}
	return base + "/" + p
}
