// Package link is the hotalloc fixture: a Link whose Tick method is a
// declared steady-state root, containing one of each allocation-site kind,
// the clean shapes that must stay silent, a waived site, and a cold function
// no root reaches.
package link

import "fmt"

// Link is one fixture hop.
type Link struct {
	buf  []int
	name string
}

// sink boxes its argument when it is not pointer-shaped.
func sink(v any) bool { return v != nil }

// Tick advances the link one cycle.
func (l *Link) Tick(now uint64) {
	// Clean: the reuse idiom on a field keeps steady-state capacity.
	l.buf = append(l.buf, int(now))

	// Finding: make on the tick path.
	tmp := make([]int, 4)
	_ = tmp

	// Waived: the reason documents why this cold branch is acceptable.
	//lint:allow hotalloc drained once at shutdown, not per cycle
	shutdown := make([]int, 1)
	_ = shutdown

	// Finding: appending to a slice declared in this function allocates
	// every call.
	var fresh []int
	fresh = append(fresh, 1)
	_ = fresh

	// Findings: slice literal, map literal, &T{...}.
	pair := []int{1, 2}
	_ = pair
	idx := map[int]int{}
	_ = idx
	other := &Link{}
	_ = other

	// Finding: closure creation.
	f := func() int { return 0 }
	_ = f()

	// Finding: string/[]byte conversion copies.
	raw := []byte(l.name)
	_ = raw

	// Finding: boxing an int into any. Pointer-shaped arguments are silent.
	_ = sink(int(now))
	_ = sink(l)

	// Exempt: everything inside panic arguments.
	if now == ^uint64(0) {
		panic(fmt.Sprintf("link: impossible cycle %d", now))
	}

	_ = l.val()
}

// val boxes its concrete result into an interface at the return.
func (l *Link) val() any {
	return len(l.buf)
}

// coldSetup allocates freely: no tick root reaches it.
func coldSetup(n int) []int {
	out := make([]int, n)
	return out
}
