// Package noc is the godoc fixture: exported symbols without doc comments
// are findings; documented, unexported, grouped, trailing-comment, and
// waived shapes stay silent.
package noc

// Documented has a doc comment.
type Documented struct{}

type Undocumented struct{}

type Waived struct{} //lint:allow godoc fixture pins that godoc findings are waivable

// Exported is documented.
func Exported() {}

func Missing() {}

func unexported() {}

// Shown documents an exported method on an exported type.
func (Documented) Shown() {}

func (Documented) Hidden() {}

type internalOnly struct{}

// Methods on unexported types are invisible to godoc, documented or not.
func (internalOnly) Exported() {}

// Grouped declarations are covered by the group comment.
const (
	GroupedA = iota
	GroupedB
)

const Bare = 1

const Trailing = 2 // a trailing comment documents the spec

var _ = unexported
var _ = internalOnly{}
