package sched

import "testing"

func TestWakePark(t *testing.T) {
	s := NewActiveSet(4)
	if !s.Empty() || s.Len() != 0 || s.Size() != 4 {
		t.Fatalf("new set: Empty=%v Len=%d Size=%d", s.Empty(), s.Len(), s.Size())
	}
	s.Wake(2)
	s.Wake(2) // idempotent
	if s.Len() != 1 || !s.Active(2) || s.Active(0) {
		t.Fatalf("after Wake(2): Len=%d Active(2)=%v Active(0)=%v", s.Len(), s.Active(2), s.Active(0))
	}
	s.Wake(0)
	if s.Len() != 2 || s.Empty() {
		t.Fatalf("after Wake(0): Len=%d", s.Len())
	}
	s.Park(2)
	s.Park(2) // idempotent
	if s.Len() != 1 || s.Active(2) || !s.Active(0) {
		t.Fatalf("after Park(2): Len=%d Active(2)=%v Active(0)=%v", s.Len(), s.Active(2), s.Active(0))
	}
	s.Park(0)
	if !s.Empty() {
		t.Fatal("set should be empty again")
	}
}

func TestParkNeverWoken(t *testing.T) {
	s := NewActiveSet(2)
	s.Park(1) // parking a parked member must not corrupt the count
	if s.Len() != 0 {
		t.Fatalf("Len = %d, want 0", s.Len())
	}
	s.Wake(1)
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
}

func TestNegativeSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewActiveSet(-1) did not panic")
		}
	}()
	NewActiveSet(-1)
}
