// Fixture: the sanctioned CycleMeter may use sync/atomic inside its own
// declaration and methods; any other atomic use in the package is flagged.
package config

import "sync/atomic"

// CycleMeter mirrors the real sanctioned type from the rule table.
type CycleMeter struct{ n atomic.Uint64 }

// Add records n cycles.
func (m *CycleMeter) Add(n uint64) { m.n.Add(n) }

// Load returns the recorded cycles.
func (m *CycleMeter) Load() uint64 { return m.n.Load() }

// Rogue uses an atomic outside the sanctioned type.
func Rogue() uint64 {
	var x atomic.Uint64
	x.Add(1)
	return x.Load()
}
