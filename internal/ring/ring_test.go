package ring

import (
	"math/rand"
	"testing"
)

func TestFIFOOrder(t *testing.T) {
	var b Buffer[int]
	for i := 0; i < 100; i++ {
		b.Push(i)
	}
	if b.Len() != 100 {
		t.Fatalf("Len = %d, want 100", b.Len())
	}
	for i := 0; i < 100; i++ {
		if got := *b.Front(); got != i {
			t.Fatalf("Front = %d, want %d", got, i)
		}
		if got := b.Pop(); got != i {
			t.Fatalf("Pop = %d, want %d", got, i)
		}
	}
	if b.Len() != 0 {
		t.Fatalf("Len = %d after drain, want 0", b.Len())
	}
}

func TestWrapAround(t *testing.T) {
	var b Buffer[int]
	next, expect := 0, 0
	// Interleave pushes and pops so head walks around the array many times.
	for round := 0; round < 50; round++ {
		for i := 0; i < 7; i++ {
			b.Push(next)
			next++
		}
		for i := 0; i < 5; i++ {
			if got := b.Pop(); got != expect {
				t.Fatalf("round %d: Pop = %d, want %d", round, got, expect)
			}
			expect++
		}
	}
	for b.Len() > 0 {
		if got := b.Pop(); got != expect {
			t.Fatalf("drain: Pop = %d, want %d", got, expect)
		}
		expect++
	}
	if expect != next {
		t.Fatalf("drained %d elements, pushed %d", expect, next)
	}
}

func TestAt(t *testing.T) {
	var b Buffer[int]
	for i := 0; i < 5; i++ {
		b.Push(10 + i)
	}
	b.Pop()
	b.Push(15)
	for i := 0; i < b.Len(); i++ {
		if got := *b.At(i); got != 11+i {
			t.Fatalf("At(%d) = %d, want %d", i, got, 11+i)
		}
	}
	*b.At(2) = 99
	if got := *b.At(2); got != 99 {
		t.Fatalf("At(2) after write = %d, want 99", got)
	}
}

// TestRemoveAtMatchesSlice drives the ring and a reference slice with the
// same random operation sequence and requires identical contents throughout
// — RemoveAt (both shift directions), Push, and Pop must preserve order
// exactly like append/copy on a plain slice.
func TestRemoveAtMatchesSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var b Buffer[int]
	var ref []int
	next := 0
	for op := 0; op < 5000; op++ {
		switch {
		case len(ref) == 0 || rng.Intn(3) == 0:
			b.Push(next)
			ref = append(ref, next)
			next++
		case rng.Intn(2) == 0:
			got, want := b.Pop(), ref[0]
			ref = ref[1:]
			if got != want {
				t.Fatalf("op %d: Pop = %d, want %d", op, got, want)
			}
		default:
			i := rng.Intn(len(ref))
			got, want := b.RemoveAt(i), ref[i]
			ref = append(ref[:i], ref[i+1:]...)
			if got != want {
				t.Fatalf("op %d: RemoveAt(%d) = %d, want %d", op, i, got, want)
			}
		}
		if b.Len() != len(ref) {
			t.Fatalf("op %d: Len = %d, want %d", op, b.Len(), len(ref))
		}
		for i, want := range ref {
			if got := *b.At(i); got != want {
				t.Fatalf("op %d: At(%d) = %d, want %d", op, i, got, want)
			}
		}
	}
}

func TestPopZeroesSlot(t *testing.T) {
	var b Buffer[*int]
	v := new(int)
	b.Push(v)
	b.Pop()
	// The backing array must not pin the popped pointer.
	if b.buf[0] != nil {
		t.Fatal("Pop left the popped pointer in the backing array")
	}
	b.Push(v)
	b.Push(v)
	b.RemoveAt(1)
	for i := range b.buf {
		if i != b.head && b.buf[i] != nil {
			t.Fatalf("RemoveAt left a stale pointer at slot %d", i)
		}
	}
}

func TestSteadyStateDoesNotAllocate(t *testing.T) {
	var b Buffer[int]
	for i := 0; i < 16; i++ {
		b.Push(i)
	}
	for b.Len() > 0 {
		b.Pop()
	}
	allocs := testing.AllocsPerRun(1000, func() {
		for i := 0; i < 16; i++ {
			b.Push(i)
		}
		for b.Len() > 0 {
			b.Pop()
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Push/Pop allocated %.1f times per run, want 0", allocs)
	}
}

func TestPanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s on empty buffer did not panic", name)
			}
		}()
		f()
	}
	var b Buffer[int]
	expectPanic("Pop", func() { b.Pop() })
	expectPanic("Front", func() { b.Front() })
	expectPanic("At", func() { b.At(0) })
	expectPanic("RemoveAt", func() { b.RemoveAt(0) })
}
