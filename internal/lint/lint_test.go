package lint

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the fixture want.txt goldens")

// loadFixture loads one testdata tree as if it were the module "gpunoc" and
// runs the full analyzer suite over it.
func loadFixture(t *testing.T, name string) (string, []Diagnostic) {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	loader := Loader{ModulePath: "gpunoc", Dir: dir}
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatalf("load fixture %s: %v", name, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("fixture %s: no packages loaded", name)
	}
	return dir, Run(pkgs, DefaultRules(), Analyzers())
}

// render prints diagnostics exactly as the driver does, with fixture-relative
// paths so the goldens are stable.
func render(t *testing.T, root string, diags []Diagnostic) string {
	t.Helper()
	var b strings.Builder
	for _, d := range diags {
		rel, err := filepath.Rel(root, d.Pos.Filename)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&b, "%s:%d: [%s] %s\n", filepath.ToSlash(rel), d.Pos.Line, d.Rule, d.Msg)
	}
	return b.String()
}

// TestFixtures pins every analyzer (and the directive hygiene of the
// framework itself) against golden diagnostics: each fixture tree contains
// deliberate violations and the sanctioned shapes that must stay silent, and
// the rendered findings must match want.txt byte for byte.
func TestFixtures(t *testing.T) {
	for _, name := range []string{
		"layering", "determinism", "tickmodel", "purity", "godoc", "allowdirectives",
		"shardsafety", "hotalloc",
	} {
		t.Run(name, func(t *testing.T) {
			root, diags := loadFixture(t, name)
			got := render(t, root, diags)
			if got == "" {
				t.Fatalf("fixture %s produced no findings; it must contain at least one deliberate violation", name)
			}
			goldenPath := filepath.Join(root, "want.txt")
			if *update {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden (run `go test ./internal/lint -run TestFixtures -update`): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
			}
		})
	}
}

// TestRepoIsLintClean is the enforcement test: the real module must load,
// type-check, and produce zero findings. This is what keeps every fix and
// every //lint:allow in the tree load-bearing — removing one makes this fail.
func TestRepoIsLintClean(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	loader := Loader{ModulePath: "gpunoc", Dir: root}
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages from the module root; loader discovery is broken", len(pkgs))
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			t.Errorf("%s: type-check: %v", pkg.Path, terr)
		}
	}
	diags := Run(pkgs, DefaultRules(), Analyzers())
	for _, d := range diags {
		t.Errorf("unexpected finding: %s", d)
	}
}

// TestSubPatternDoesNotFlagIdleWaivers pins the Disable contract: linting a
// package subset leaves the whole-program analyzers with missing roots and a
// partial call graph, so their //lint:allow directives may legitimately sit
// idle — the unused-waiver hygiene finding must stand down rather than force
// CI-red on every focused lint run (mem.go and warp.go both carry hotalloc
// waivers whose sites are only reachable through the full engine graph).
func TestSubPatternDoesNotFlagIdleWaivers(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	loader := Loader{ModulePath: "gpunoc", Dir: root}
	pkgs, err := loader.Load("internal/mem", "internal/warp")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("got %d packages, want 2", len(pkgs))
	}
	for _, d := range Run(pkgs, DefaultRules(), Analyzers()) {
		t.Errorf("sub-pattern lint must be clean, got: %s", d)
	}
}

// TestLayeringTableIsAcyclic guards the rule table itself: the declared
// import DAG must actually be a DAG, and every allowed import must itself be
// a declared package, so "arrows only point downward" stays meaningful.
func TestLayeringTableIsAcyclic(t *testing.T) {
	allowed := DefaultRules().Layering.Allowed
	for pkg, imports := range allowed {
		for _, imp := range imports {
			if _, ok := allowed[imp]; !ok {
				t.Errorf("layering table: %q allows import of undeclared package %q", pkg, imp)
			}
			if imp == pkg {
				t.Errorf("layering table: %q allows importing itself", pkg)
			}
		}
	}

	const (
		unvisited = iota
		visiting
		done
	)
	state := make(map[string]int)
	var visit func(pkg string, path []string)
	visit = func(pkg string, path []string) {
		switch state[pkg] {
		case done:
			return
		case visiting:
			t.Fatalf("layering table contains a cycle: %s -> %s", strings.Join(path, " -> "), pkg)
		}
		state[pkg] = visiting
		for _, imp := range allowed[pkg] {
			visit(imp, append(path, pkg))
		}
		state[pkg] = done
	}
	for pkg := range allowed {
		visit(pkg, nil)
	}
}

func TestScopeMatch(t *testing.T) {
	s := Scope{Include: []string{"", "internal/"}, Exclude: []string{"internal/lint"}}
	for rel, want := range map[string]bool{
		"":                     true,
		"internal":             true,
		"internal/noc":         true,
		"internal/lint":        false,
		"cmd/ccbench":          false,
		"examples/quickstart":  false,
		"internal/experiments": true,
	} {
		if got := s.Match(rel); got != want {
			t.Errorf("Match(%q) = %v, want %v", rel, got, want)
		}
	}
	exact := Scope{Include: []string{"internal/noc"}}
	if exact.Match("internal/noc2") {
		t.Error("exact include must not prefix-match a sibling")
	}
	if !exact.Match("internal/noc") {
		t.Error("exact include must match itself")
	}
}

func TestMatchPatterns(t *testing.T) {
	for _, tc := range []struct {
		rel      string
		patterns []string
		want     bool
	}{
		{"internal/noc", []string{"./..."}, true},
		{"", []string{"./..."}, true},
		{"", []string{"."}, true},
		{"internal/noc", []string{"."}, false},
		{"internal/noc", []string{"internal/..."}, true},
		{"internal/noc", []string{"internal/noc"}, true},
		{"internal/noc2", []string{"internal/noc"}, false},
		{"internal/noc", []string{"cmd/..."}, false},
		{"internal/noc", nil, false},
	} {
		if got := matchPatterns(tc.rel, tc.patterns); got != tc.want {
			t.Errorf("matchPatterns(%q, %v) = %v, want %v", tc.rel, tc.patterns, got, tc.want)
		}
	}
}
