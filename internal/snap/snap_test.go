package snap

import (
	"encoding/binary"
	"errors"
	"math/rand"
	"testing"
)

// roundTrip encodes a representative payload and returns the snapshot
// bytes (config hash 0xabcd).
func roundTrip(t *testing.T) []byte {
	t.Helper()
	e := NewEncoder()
	e.Mark("header")
	e.U8(7)
	e.Bool(true)
	e.U32(0xdeadbeef)
	e.U64(1 << 60)
	e.I64(-42)
	e.Int(12345)
	e.F64(3.25)
	e.String("covert")
	e.Blob([]byte{1, 2, 3})
	return e.Finish(0xabcd)
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	data := roundTrip(t)
	d, err := NewDecoder(data, 0xabcd)
	if err != nil {
		t.Fatalf("NewDecoder: %v", err)
	}
	d.Expect("header")
	if got := d.U8(); got != 7 {
		t.Errorf("U8 = %d, want 7", got)
	}
	if !d.Bool() {
		t.Error("Bool = false, want true")
	}
	if got := d.U32(); got != 0xdeadbeef {
		t.Errorf("U32 = %#x", got)
	}
	if got := d.U64(); got != 1<<60 {
		t.Errorf("U64 = %d", got)
	}
	if got := d.I64(); got != -42 {
		t.Errorf("I64 = %d", got)
	}
	if got := d.Int(); got != 12345 {
		t.Errorf("Int = %d", got)
	}
	if got := d.F64(); got != 3.25 {
		t.Errorf("F64 = %v", got)
	}
	if got := d.String(); got != "covert" {
		t.Errorf("String = %q", got)
	}
	b := d.Blob()
	if len(b) != 3 || b[0] != 1 || b[2] != 3 {
		t.Errorf("Blob = %v", b)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestVersionSkewFailsTyped(t *testing.T) {
	data := roundTrip(t)
	binary.LittleEndian.PutUint32(data[4:], Version+1)
	_, err := NewDecoder(data, 0xabcd)
	if !errors.Is(err, ErrVersion) {
		t.Fatalf("bumped version: err = %v, want ErrVersion", err)
	}
}

func TestConfigMismatchFailsTyped(t *testing.T) {
	data := roundTrip(t)
	_, err := NewDecoder(data, 0x9999)
	if !errors.Is(err, ErrConfigMismatch) {
		t.Fatalf("wrong config hash: err = %v, want ErrConfigMismatch", err)
	}
}

func TestTruncationFailsTyped(t *testing.T) {
	data := roundTrip(t)
	for _, n := range []int{0, 4, headerLen, len(data) - 1} {
		if _, err := NewDecoder(data[:n], 0xabcd); !errors.Is(err, ErrCorrupt) {
			t.Errorf("truncated to %d bytes: err = %v, want ErrCorrupt", n, err)
		}
	}
}

func TestBitFlipFailsCRC(t *testing.T) {
	data := roundTrip(t)
	data[headerLen+3] ^= 0x40
	if _, err := NewDecoder(data, 0xabcd); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bit flip: err = %v, want ErrCorrupt", err)
	}
}

func TestBadMagicFails(t *testing.T) {
	data := roundTrip(t)
	data[0] ^= 0xff
	if _, err := NewDecoder(data, 0xabcd); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad magic: err = %v, want ErrCorrupt", err)
	}
}

func TestSectionMarkMismatch(t *testing.T) {
	e := NewEncoder()
	e.Mark("links")
	e.U64(9)
	data := e.Finish(1)
	d, err := NewDecoder(data, 1)
	if err != nil {
		t.Fatalf("NewDecoder: %v", err)
	}
	d.Expect("slices")
	if err := d.Close(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("mark mismatch: err = %v, want ErrCorrupt", err)
	}
}

func TestTrailingBytesFail(t *testing.T) {
	data := roundTrip(t)
	d, err := NewDecoder(data, 0xabcd)
	if err != nil {
		t.Fatalf("NewDecoder: %v", err)
	}
	d.Expect("header")
	d.U8()
	if err := d.Close(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("partial read: err = %v, want ErrCorrupt", err)
	}
}

func TestStickyErrorStopsReads(t *testing.T) {
	e := NewEncoder()
	e.U8(1)
	data := e.Finish(1)
	d, err := NewDecoder(data, 1)
	if err != nil {
		t.Fatalf("NewDecoder: %v", err)
	}
	d.U64() // runs off the end
	if d.Err() == nil {
		t.Fatal("over-read did not set the sticky error")
	}
	if got := d.String(); got != "" {
		t.Errorf("read after error returned %q, want zero value", got)
	}
}

func TestLenRejectsOversizedPrefix(t *testing.T) {
	e := NewEncoder()
	e.U64(1 << 40) // a length no payload could back
	data := e.Finish(1)
	d, err := NewDecoder(data, 1)
	if err != nil {
		t.Fatalf("NewDecoder: %v", err)
	}
	if n := d.Len(); n != 0 {
		t.Errorf("Len = %d, want 0 on corrupt prefix", n)
	}
	if !errors.Is(d.Err(), ErrCorrupt) {
		t.Fatalf("oversized length: err = %v, want ErrCorrupt", d.Err())
	}
}

func TestCountingSourceMatchesPlainSource(t *testing.T) {
	cs := NewCountingSource(99)
	plain := rand.New(rand.NewSource(99))
	counted := rand.New(cs)
	for i := 0; i < 100; i++ {
		if a, b := counted.Intn(37), plain.Intn(37); a != b {
			t.Fatalf("draw %d: counted %d, plain %d", i, a, b)
		}
	}
	if cs.Draws() == 0 {
		t.Fatal("no draws counted")
	}
}

func TestCountingSourceSeekTo(t *testing.T) {
	cs := NewCountingSource(7)
	r := rand.New(cs)
	for i := 0; i < 53; i++ {
		r.Intn(1000)
	}
	draws := cs.Draws()
	next := make([]int, 10)
	for i := range next {
		next[i] = r.Intn(1000)
	}

	cs2 := NewCountingSource(7)
	cs2.SeekTo(draws)
	if cs2.Draws() != draws {
		t.Fatalf("SeekTo left draws=%d, want %d", cs2.Draws(), draws)
	}
	r2 := rand.New(cs2)
	for i := range next {
		if got := r2.Intn(1000); got != next[i] {
			t.Fatalf("draw %d after SeekTo: got %d, want %d", i, got, next[i])
		}
	}
}
